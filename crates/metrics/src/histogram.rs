//! Fixed-bucket histograms, used for latency and document-size
//! distributions.

use serde::{Deserialize, Serialize};

/// A histogram with uniform-width buckets over `[lo, hi)` plus overflow and
/// underflow buckets.
///
/// # Examples
///
/// ```
/// use cachecloud_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10);
/// for v in [5.0, 15.0, 15.5, 99.0, 150.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bucket_count(1), 2); // the two 15.x samples
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `n` uniform buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo < hi, "lo must be below hi");
        assert!(n > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((v - self.lo) / w) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Approximate quantile `q` in `[0,1]` using bucket midpoints
    /// (underflow counts at `lo`, overflow at `hi`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return self.lo + w * (i as f64 + 0.5);
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.99);
        h.record(2.0);
        h.record(9.99);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(10.0, 20.0, 2);
        h.record(5.0);
        h.record(20.0);
        h.record(1000.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn mean_tracks_all_samples() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.record(0.5);
        h.record(99.5); // overflow still counts toward the mean
        assert_eq!(h.mean(), 50.0);
        assert_eq!(Histogram::new(0.0, 1.0, 1).mean(), 0.0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        assert!((q50 - 50.0).abs() <= 1.0);
        assert!((q90 - 90.0).abs() <= 1.0);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 3);
    }

    #[test]
    fn quantile_all_underflow_reports_lo() {
        let mut h = Histogram::new(10.0, 20.0, 4);
        h.record(1.0);
        h.record(2.0);
        h.record(3.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 10.0, "q={q}");
        }
    }

    #[test]
    fn quantile_all_overflow_reports_hi() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.record(100.0);
        h.record(200.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 10.0, "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_hit_first_and_last_samples() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        h.record(3.0);
        h.record(97.0);
        // q=0 selects rank 1 (the smallest sample's bucket midpoint).
        assert_eq!(h.quantile(0.0), 3.5);
        assert_eq!(h.quantile(1.0), 97.5);
        // A single overflow sample pushes q=1 to hi but leaves q=0 alone.
        h.record(1000.0);
        assert_eq!(h.quantile(0.0), 3.5);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn quantile_nearest_rank_boundaries() {
        // Four equal-count buckets: ranks 1..=4 at midpoints 12.5/37.5/62.5/87.5.
        let mut h = Histogram::new(0.0, 100.0, 4);
        for v in [10.0, 30.0, 60.0, 80.0] {
            h.record(v);
        }
        // ceil(0.25 * 4) = 1 -> first bucket; ceil(0.26 * 4) = 2 -> second.
        assert_eq!(h.quantile(0.25), 12.5);
        assert_eq!(h.quantile(0.26), 37.5);
        assert_eq!(h.quantile(0.5), 37.5);
        assert_eq!(h.quantile(0.75), 62.5);
        assert_eq!(h.quantile(1.0), 87.5);
    }
}
