#!/usr/bin/env bash
# The repository's CI gate, runnable locally: formatting, lints, tests.
#
#   ./ci.sh
#
# Mirrors .github/workflows/ci.yml exactly — if this passes, CI passes.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

echo "CI green."
