#!/usr/bin/env bash
# The repository's CI gate, runnable locally: formatting, lints, tests.
#
#   ./ci.sh
#
# Mirrors .github/workflows/ci.yml exactly — if this passes, CI passes.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos suite (pinned seeds, bounded)"
# The chaos tests run a live loopback cloud behind fault-injecting
# proxies; seeds are pinned so failures replay. `timeout` caps the whole
# suite well above its normal few-second runtime in case of a hang.
CHAOS_SEEDS="11,23" timeout 300 \
  cargo test -q -p cachecloud-cluster --test chaos

echo "==> smoke bench (pinned seed, bounded, throughput-gated)"
# A small live benchmark against a loopback cluster: exits non-zero
# unless traffic flowed, the deterministic schedule digest reproduced,
# the error rate stayed within bounds, the bounded pass evicted with
# zero unconfirmed eviction deregistrations, the moving-hotspot pass
# (pinned seed 42) left post-rebalance beacon-load CoV strictly below
# the stale-table CoV, AND throughput cleared the floors below. The
# floors are deliberately far under the dev-box numbers (~50k
# one-in-flight, ~94k pipelined on a single core) so only a real
# serving regression trips them, not a noisy shared runner; the hotspot
# gate checks the direction of the rebalance effect, not its size.
# Writes BENCH_cluster.json (archived as an artifact by the workflow).
timeout 300 cargo run --release -q -p cachecloud-loadgen --bin loadgen -- \
  --smoke --min-closed-qps 10000 --min-pipelined-qps 40000 \
  --out BENCH_cluster.json

echo "CI green."
